//! Shared helpers for the integration suite: the engine-mode knob,
//! testbed-construction boilerplate, golden-hash file IO, and
//! divergence artifacts for CI.
//!
//! Every testbed built through [`TestbedConfig::new`] already honours
//! `LNIC_ENGINE` (serial / sharded / sharded:N), so the whole suite
//! flips engines with one environment variable. The helpers here close
//! the remaining gaps: guarding pinned *serial* goldens when the suite
//! runs elsewhere, deduplicating the resilient-gateway config and
//! driver spawn blocks, and giving the equivalence suite one place to
//! read, pin, and diff golden hashes.

use std::collections::HashMap;
use std::path::PathBuf;
use std::sync::Arc;

use lnic::prelude::*;
use lnic_sim::prelude::*;

/// The engine the suite is running on, from `LNIC_ENGINE`. This is the
/// mode [`TestbedConfig::new`] will build with — the single knob the
/// issue asks for.
pub fn engine_mode() -> EngineMode {
    EngineMode::from_env()
}

/// Whether checks against *pinned serial* golden hashes are meaningful
/// in this environment. They are not when a CI seed sweep moved every
/// seed (`LNIC_SEED_OFFSET != 0`) or when the suite runs on the sharded
/// engine (`LNIC_ENGINE`), whose traces are a different — separately
/// pinned — deterministic universe (zero-delay cross-shard control
/// messages are floored to the lookahead, so timings differ from the
/// serial schedule).
pub fn serial_golden_checks_enabled() -> bool {
    seed_offset() == 0 && engine_mode().is_serial()
}

/// The resilient NIC testbed used by every chaos/failover scenario:
/// `workers` λ-NIC workers, a 50 ms RPC timeout with 5 attempts, and
/// the gateway's resilient profile (hedging + retry budget). Callers
/// tweak fields afterwards (e.g. `config.nic.firmware_swap_time`).
pub fn resilient_nic_config(seed: u64, workers: usize) -> TestbedConfig {
    let mut config = TestbedConfig::new(BackendKind::Nic)
        .seed(seed)
        .workers(workers);
    config.gateway.rpc_timeout = SimDuration::from_millis(50);
    config.gateway.rpc_attempts = 5;
    config.gateway = config.gateway.resilient();
    config
}

/// One `Page(0)` job per lambda of `program` — the standard closed-loop
/// job mix for web-server scenarios.
pub fn page_jobs(program: &Arc<lnic_mlambda::program::Program>) -> Vec<JobSpec> {
    program
        .lambdas
        .iter()
        .map(|l| JobSpec {
            workload_id: l.id.0,
            payload: PayloadSpec::Page(0),
        })
        .collect()
}

/// Adds a [`ClosedLoopDriver`] to the testbed and schedules its
/// [`StartDriver`] at `start_after`. Returns the driver's component id
/// for completion checks.
pub fn spawn_closed_loop(
    bed: &mut Testbed,
    jobs: Vec<JobSpec>,
    threads: usize,
    think: SimDuration,
    per_thread: Option<u64>,
    start_after: SimDuration,
) -> ComponentId {
    let driver = bed.sim.add(ClosedLoopDriver::new(
        bed.gateway,
        jobs,
        threads,
        think,
        per_thread,
    ));
    bed.sim.post(driver, start_after, StartDriver);
    driver
}

/// Golden-hash file IO shared by `trace_golden`, `kv_replication`, and
/// `engine_equivalence`. Files live under `tests/goldens/` as
/// `name 0x<fnv1a>` lines; `UPDATE_GOLDENS=1` re-pins.
pub mod goldens {
    use super::*;

    /// Absolute path of `tests/goldens/<file>`.
    pub fn path(file: &str) -> PathBuf {
        PathBuf::from(env!("CARGO_MANIFEST_DIR"))
            .join("goldens")
            .join(file)
    }

    /// Whether the caller asked to re-pin (`UPDATE_GOLDENS=1`).
    pub fn update_requested() -> bool {
        std::env::var_os("UPDATE_GOLDENS").is_some()
    }

    /// Reads `name 0x<hash>` lines, skipping blanks and `#` comments.
    ///
    /// # Panics
    ///
    /// Panics when the file is missing or a line does not parse — a
    /// missing golden is a test failure, not a skip.
    pub fn read(file: &str) -> HashMap<String, u64> {
        let p = path(file);
        let text = std::fs::read_to_string(&p).unwrap_or_else(|e| {
            panic!(
                "{} exists (run with UPDATE_GOLDENS=1 to create): {e}",
                p.display()
            )
        });
        text.lines()
            .filter(|l| !l.is_empty() && !l.starts_with('#'))
            .map(|l| {
                let (name, hash) = l.split_once(' ').expect("`name 0x<hash>` per line");
                let hash = u64::from_str_radix(hash.trim().trim_start_matches("0x"), 16)
                    .expect("hash parses as hex");
                (name.to_owned(), hash)
            })
            .collect()
    }

    /// Writes `cases` under a `# comment` header, creating the goldens
    /// directory if needed.
    ///
    /// # Panics
    ///
    /// Panics when the file cannot be written.
    pub fn write(file: &str, header: &str, cases: &[(String, u64)]) {
        let mut out = String::new();
        for line in header.lines() {
            out.push_str("# ");
            out.push_str(line);
            out.push('\n');
        }
        for (name, hash) in cases {
            out.push_str(&format!("{name} {hash:#018x}\n"));
        }
        let p = path(file);
        std::fs::create_dir_all(p.parent().unwrap()).unwrap();
        std::fs::write(&p, out).unwrap();
    }
}

/// Directory for diverging-trace artifacts (JSONL pairs uploaded by
/// CI on golden-hash mismatch): `LNIC_DIVERGENCE_DIR` when set, else
/// `target/divergence/` of the workspace.
pub fn divergence_dir() -> PathBuf {
    if let Some(dir) = std::env::var_os("LNIC_DIVERGENCE_DIR") {
        return PathBuf::from(dir);
    }
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("..")
        .join("target")
        .join("divergence")
}
